package chain

import (
	"math/rand/v2"
	"testing"

	"sops/internal/config"
)

// TestEnginesProduceIdenticalTrajectories runs the grid engine and the
// map-backed reference engine from identical (σ0, λ, seed) and asserts
// step-for-step equality: same accept/reject decision, same particle
// positions, same incremental edge count, and (sampled) same perimeter and
// hole status. This is the contract that makes the refactor invisible:
// fixed options and seed keep producing byte-identical results.
func TestEnginesProduceIdenticalTrajectories(t *testing.T) {
	type scenario struct {
		name   string
		start  func(rng *rand.Rand) *config.Config
		lambda float64
		steps  int
	}
	scenarios := []scenario{
		{"line/compress", func(*rand.Rand) *config.Config { return config.Line(30) }, 4, 6000},
		{"line/expand", func(*rand.Rand) *config.Config { return config.Line(20) }, 0.5, 6000},
		{"spiral/critical", func(*rand.Rand) *config.Config { return config.Spiral(25) }, 3, 6000},
		{"eden/holes", func(rng *rand.Rand) *config.Config { return config.RandomConnected(rng, 35) }, 4, 6000},
		{"tree", func(rng *rand.Rand) *config.Config { return config.RandomTree(rng, 20) }, 2, 6000},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				rng := rand.New(rand.NewPCG(seed, 42))
				sigma0 := sc.start(rng)
				fast := MustNew(sigma0, sc.lambda, seed)
				ref := MustNew(sigma0, sc.lambda, seed, WithReferenceEngine())
				for step := 0; step < sc.steps; step++ {
					fm, rm := fast.Step(), ref.Step()
					if fm != rm {
						t.Fatalf("seed %d step %d: fast moved=%v, reference moved=%v", seed, step, fm, rm)
					}
					if fast.Edges() != ref.Edges() {
						t.Fatalf("seed %d step %d: edges %d vs %d", seed, step, fast.Edges(), ref.Edges())
					}
					if fm {
						for i := range fast.points {
							if fast.points[i] != ref.points[i] {
								t.Fatalf("seed %d step %d: particle %d at %v vs %v",
									seed, step, i, fast.points[i], ref.points[i])
							}
						}
					}
					if step%500 == 0 {
						if fast.Perimeter() != ref.Perimeter() {
							t.Fatalf("seed %d step %d: perimeter %d vs %d",
								seed, step, fast.Perimeter(), ref.Perimeter())
						}
						if fast.HoleFree() != ref.HoleFree() {
							t.Fatalf("seed %d step %d: holeFree %v vs %v",
								seed, step, fast.HoleFree(), ref.HoleFree())
						}
					}
				}
				if fast.Accepted() != ref.Accepted() {
					t.Fatalf("seed %d: accepted %d vs %d", seed, fast.Accepted(), ref.Accepted())
				}
				fp, rp := fast.Config().Points(), ref.Config().Points()
				for i := range fp {
					if fp[i] != rp[i] {
						t.Fatalf("seed %d: final point %d = %v vs %v", seed, i, fp[i], rp[i])
					}
				}
			}
		})
	}
}

// TestAblationEnginesAgree repeats the differential run with each rule of M
// ablated, so the option plumbing is identical on both engines too.
func TestAblationEnginesAgree(t *testing.T) {
	ablations := map[string]Option{
		"noDegreeGuard": WithoutDegreeGuard(),
		"noProperty1":   WithoutProperty1(),
		"noProperty2":   WithoutProperty2(),
	}
	for name, opt := range ablations {
		t.Run(name, func(t *testing.T) {
			sigma0 := config.Spiral(20)
			fast := MustNew(sigma0, 1, 7, opt)
			ref := MustNew(sigma0, 1, 7, opt, WithReferenceEngine())
			for step := 0; step < 5000; step++ {
				if fm, rm := fast.Step(), ref.Step(); fm != rm {
					t.Fatalf("step %d: fast moved=%v, reference moved=%v", step, fm, rm)
				}
			}
			if fast.Config().Key() != ref.Config().Key() {
				t.Fatal("final configurations differ")
			}
		})
	}
}

// TestGridStateMatchesView spot-checks that the grid engine's incremental
// bookkeeping matches a from-scratch recomputation on its own materialized
// configuration mid-run.
func TestGridStateMatchesView(t *testing.T) {
	c := MustNew(config.Line(40), 4, 3)
	for batch := 0; batch < 20; batch++ {
		c.Run(2000)
		v := c.view()
		if got, want := c.Edges(), v.Edges(); got != want {
			t.Fatalf("batch %d: incremental edges %d, recomputed %d", batch, got, want)
		}
		if got, want := c.Perimeter(), v.Perimeter(); got != want {
			t.Fatalf("batch %d: perimeter %d, recomputed %d", batch, got, want)
		}
		if !v.Connected() {
			t.Fatalf("batch %d: configuration disconnected", batch)
		}
	}
}
