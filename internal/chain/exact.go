package chain

import (
	"sops/internal/config"
	"sops/internal/lattice"
	"sops/internal/move"
)

// TransitionDist returns the exact one-step transition distribution of
// Markov chain M from configuration σ with bias λ: a map from canonical
// configuration Key to transition probability, including the self-loop.
// Each of the 6n (particle, direction) proposals carries probability 1/(6n)
// and is accepted with the Metropolis probability min(1, λ^{e′−e}) when the
// move is valid.
//
// This materializes M's transition matrix row-by-row for small state spaces;
// the exact-stationarity and ergodicity tests power-iterate it and compare
// against Lemma 3.13.
func TransitionDist(sigma *config.Config, lambda float64) map[string]float64 {
	out := make(map[string]float64)
	pts := sigma.Points()
	n := len(pts)
	propose := 1 / float64(6*n)
	self := 0.0
	for _, l := range pts {
		for d := lattice.Dir(0); d < lattice.NumDirs; d++ {
			if !move.Valid(sigma, l, d) {
				self += propose
				continue
			}
			lp := l.Neighbor(d)
			e := sigma.Degree(l)
			ep := sigma.DegreeExcluding(lp, l)
			accept := 1.0
			if ep < e {
				accept = 1.0
				for k := 0; k < e-ep; k++ {
					accept /= lambda
				}
				if accept > 1 {
					// λ < 1 biases toward fewer neighbors; cap at 1.
					accept = 1
				}
			} else if lambda < 1 {
				accept = 1.0
				for k := 0; k < ep-e; k++ {
					accept *= lambda
				}
			}
			next := sigma.Clone()
			next.Move(l, lp)
			out[next.Key()] += propose * accept
			self += propose * (1 - accept)
		}
	}
	out[sigma.Key()] += self
	return out
}

// Reachable returns the distinct configurations (canonicalized) reachable
// from σ in one accepted move of M — every transition with positive
// probability other than the self-loop.
func Reachable(sigma *config.Config) []*config.Config {
	var out []*config.Config
	seen := map[string]bool{sigma.Key(): true}
	for _, l := range sigma.Points() {
		for d := lattice.Dir(0); d < lattice.NumDirs; d++ {
			if !move.Valid(sigma, l, d) {
				continue
			}
			next := sigma.Clone()
			next.Move(l, l.Neighbor(d))
			if k := next.Key(); !seen[k] {
				seen[k] = true
				out = append(out, next.Canonical())
			}
		}
	}
	return out
}
