package chain

import (
	"math"
	"math/rand/v2"
	"testing"

	"sops/internal/config"
	"sops/internal/enumerate"
	"sops/internal/lattice"
	"sops/internal/metrics"
	"sops/internal/move"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(config.New(), 4, 1); err == nil {
		t.Error("empty configuration must be rejected")
	}
	disc := config.New(lattice.Point{}, lattice.Point{X: 5})
	if _, err := New(disc, 4, 1); err == nil {
		t.Error("disconnected configuration must be rejected")
	}
	line := config.Line(5)
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := New(line, bad, 1); err == nil {
			t.Errorf("λ=%v must be rejected", bad)
		}
	}
	if _, err := New(line, 4, 1); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, uint64) {
		c := MustNew(config.Line(20), 4, 12345)
		c.Run(20000)
		return c.Edges(), c.Accepted()
	}
	e1, a1 := run()
	e2, a2 := run()
	if e1 != e2 || a1 != a2 {
		t.Errorf("same seed must reproduce: (%d,%d) vs (%d,%d)", e1, a1, e2, a2)
	}
	c3 := MustNew(config.Line(20), 4, 54321)
	c3.Run(20000)
	if c3.Edges() == e1 && c3.Accepted() == a1 {
		t.Error("different seeds should (overwhelmingly) diverge")
	}
}

// TestInvariantConnectivity: Lemma 3.1 — the system stays connected forever.
func TestInvariantConnectivity(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 10; trial++ {
		start := config.RandomConnected(rng, 20+rng.IntN(20))
		c := MustNew(start, 3, uint64(trial))
		for batch := 0; batch < 20; batch++ {
			c.Run(500)
			if !c.view().Connected() {
				t.Fatalf("trial %d: configuration disconnected after %d steps", trial, c.Steps())
			}
		}
	}
}

// TestInvariantHolesNeverReform: Lemma 3.2/3.8 — once hole-free, always
// hole-free (checked against the authoritative flood-fill detector).
func TestInvariantHolesNeverReform(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	for trial := 0; trial < 8; trial++ {
		start := config.RandomConnected(rng, 25)
		c := MustNew(start, 4, uint64(100+trial))
		wasHoleFree := false
		for batch := 0; batch < 40; batch++ {
			c.Run(400)
			holes := len(c.view().HoleCells()) > 0
			if wasHoleFree && holes {
				t.Fatalf("trial %d: hole reformed after %d steps", trial, c.Steps())
			}
			if !holes {
				wasHoleFree = true
			}
		}
		if !wasHoleFree {
			t.Logf("trial %d: holes not yet eliminated after %d steps (allowed but unusual)",
				trial, c.Steps())
		}
	}
}

// TestIncrementalCountersMatch: the incrementally maintained edge count and
// derived perimeter must always equal recomputation from scratch.
func TestIncrementalCountersMatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 23))
	for trial := 0; trial < 6; trial++ {
		start := config.RandomConnected(rng, 15+rng.IntN(15))
		c := MustNew(start, 2.5, uint64(trial*7+1))
		for batch := 0; batch < 25; batch++ {
			c.Run(300)
			if got, want := c.Edges(), c.view().Edges(); got != want {
				t.Fatalf("incremental edges %d != recount %d at step %d", got, want, c.Steps())
			}
			if got, want := c.Perimeter(), c.view().Perimeter(); got != want {
				t.Fatalf("perimeter %d != boundary walk %d (holeFree=%v) at step %d",
					got, want, c.HoleFree(), c.Steps())
			}
		}
	}
}

// TestParticleCountConserved: n never changes.
func TestParticleCountConserved(t *testing.T) {
	c := MustNew(config.Line(30), 4, 8)
	c.Run(30000)
	if c.view().N() != 30 {
		t.Fatalf("particle count changed: %d", c.view().N())
	}
	if c.N() != 30 {
		t.Fatalf("N() = %d", c.N())
	}
}

// TestSingleParticleNeverMoves: a 1-particle system has no valid moves.
func TestSingleParticleNeverMoves(t *testing.T) {
	c := MustNew(config.New(lattice.Point{}), 4, 1)
	c.Run(1000)
	if c.Accepted() != 0 {
		t.Error("single particle must never move")
	}
	if c.Perimeter() != 0 {
		t.Errorf("perimeter = %d, want 0", c.Perimeter())
	}
}

// TestCompressionAtHighLambda: with λ = 6 a 30-particle line must compress
// well below its starting perimeter (this is the headline behavior; the full
// Fig 2 reproduction lives in the bench harness).
func TestCompressionAtHighLambda(t *testing.T) {
	n := 30
	c := MustNew(config.Line(n), 6, 99)
	c.Run(400000)
	p := c.Perimeter()
	start := metrics.PMax(n)
	if p >= start*2/3 {
		t.Errorf("perimeter %d did not drop below 2/3 of starting %d", p, start)
	}
}

// TestExpansionAtLowLambda: with λ = 1 (uniform over Ω*) a 30-particle
// spiral must expand toward high perimeter: entropy dominates (§5).
func TestExpansionAtLowLambda(t *testing.T) {
	n := 30
	c := MustNew(config.Spiral(n), 1, 7)
	c.Run(400000)
	p := c.Perimeter()
	if p < 2*metrics.PMin(n) {
		t.Errorf("perimeter %d stayed within 2·pmin = %d at λ=1; expansion expected", p, 2*metrics.PMin(n))
	}
}

// TestTransitionDistRowStochastic: every exact transition row sums to 1 and
// every target is connected and hole-free when the source is (Lemma 3.2).
func TestTransitionDistRowStochastic(t *testing.T) {
	for _, src := range enumerate.AllHoleFree(5) {
		dist := TransitionDist(src, 4)
		var sum float64
		for _, p := range dist {
			if p < -1e-15 {
				t.Fatalf("negative transition probability")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row sums to %v", sum)
		}
		for _, next := range Reachable(src) {
			if !next.Connected() {
				t.Fatalf("reachable config disconnected")
			}
			if next.HasHoles() {
				t.Fatalf("move from hole-free config created a hole (violates Lemma 3.2)")
			}
		}
	}
}

// TestStationaryDistributionExact power-iterates the exact transition matrix
// of M over Ω* for small n and verifies it converges to π(σ) = λ^e(σ)/Z
// (Lemma 3.13), the central correctness statement of the paper.
func TestStationaryDistributionExact(t *testing.T) {
	for _, tc := range []struct {
		n      int
		lambda float64
	}{
		{4, 4}, {4, 0.7}, {5, 2.5}, {6, 1.5},
	} {
		s := enumerate.ExactStationary(tc.n, tc.lambda)
		index := make(map[string]int, len(s.States))
		for i, c := range s.States {
			index[c.Key()] = i
		}
		// Build sparse rows.
		rows := make([]map[int]float64, len(s.States))
		for i, c := range s.States {
			rows[i] = map[int]float64{}
			for key, p := range TransitionDist(c, tc.lambda) {
				j, ok := index[key]
				if !ok {
					t.Fatalf("n=%d: transition leaves Ω*", tc.n)
				}
				rows[i][j] += p
			}
		}
		// Power-iterate from uniform.
		cur := make([]float64, len(s.States))
		for i := range cur {
			cur[i] = 1 / float64(len(cur))
		}
		for iter := 0; iter < 20000; iter++ {
			next := make([]float64, len(cur))
			for i, row := range rows {
				for j, p := range row {
					next[j] += cur[i] * p
				}
			}
			var delta float64
			for i := range next {
				delta += math.Abs(next[i] - cur[i])
			}
			cur = next
			if delta < 1e-13 {
				break
			}
		}
		var worst float64
		for i := range cur {
			if d := math.Abs(cur[i] - s.Prob[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-8 {
			t.Errorf("n=%d λ=%v: power iteration deviates from λ^e/Z by %v", tc.n, tc.lambda, worst)
		}
		// Detailed balance spot check on the exact rows.
		for i, c := range s.States {
			for key, p := range TransitionDist(c, tc.lambda) {
				j := index[key]
				if i == j {
					continue
				}
				lhs := s.Prob[i] * p
				var back float64
				if bp, ok := rows[j][i]; ok {
					back = bp
				}
				rhs := s.Prob[j] * back
				if math.Abs(lhs-rhs) > 1e-12 {
					t.Fatalf("n=%d λ=%v: detailed balance violated: %v vs %v", tc.n, tc.lambda, lhs, rhs)
				}
			}
		}
	}
}

// TestErgodicityOnSmallStateSpaces: from any configuration of Ω* every other
// configuration of Ω* is reachable (Lemma 3.10), and from any configuration
// WITH holes, Ω* is reachable (Lemma 3.8). BFS over the exact move graph.
func TestErgodicityOnSmallStateSpaces(t *testing.T) {
	sizes := []int{3, 4, 5, 6, 7}
	if testing.Short() {
		sizes = []int{3, 4, 5, 6}
	}
	for _, n := range sizes {
		states := enumerate.AllHoleFree(n)
		index := map[string]bool{}
		for _, c := range states {
			index[c.Key()] = true
		}
		// BFS from the line configuration.
		start := config.Line(n).Canonical()
		seen := map[string]bool{start.Key(): true}
		queue := []*config.Config{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range Reachable(cur) {
				k := next.Key()
				if !seen[k] {
					seen[k] = true
					queue = append(queue, next)
				}
			}
		}
		for _, c := range states {
			if !seen[c.Key()] {
				t.Errorf("n=%d: hole-free config unreachable from line: %v", n, c.Points())
			}
		}
		// No configuration outside Ω* may be reachable from inside Ω*.
		for k := range seen {
			if !index[k] {
				t.Errorf("n=%d: reachable set escaped Ω*", n)
			}
		}
	}
	// Hole elimination: the 6-ring (n=6, one hole) must reach Ω*.
	ring := config.New(lattice.Ring(lattice.Point{}, 1)...)
	if !ring.HasHoles() {
		t.Fatal("setup: ring should have a hole")
	}
	seen := map[string]bool{ring.Key(): true}
	queue := []*config.Config{ring.Canonical()}
	reachedHoleFree := false
	for len(queue) > 0 && !reachedHoleFree {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range Reachable(cur) {
			if !next.HasHoles() {
				reachedHoleFree = true
				break
			}
			if k := next.Key(); !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	if !reachedHoleFree {
		t.Error("6-ring cannot reach a hole-free configuration (violates Lemma 3.8)")
	}
}

// TestEmpiricalMatchesExactStationary runs the real sampler long enough on a
// tiny system and compares the empirical distribution of e(σ) with the exact
// one.
func TestEmpiricalMatchesExactStationary(t *testing.T) {
	const n = 4
	const lambda = 3
	s := enumerate.ExactStationary(n, lambda)
	exactByEdges := map[int]float64{}
	for i, c := range s.States {
		exactByEdges[c.Edges()] += s.Prob[i]
	}
	c := MustNew(config.Line(n), lambda, 2024)
	c.Run(20000) // burn-in
	samples := 0
	empByEdges := map[int]float64{}
	for i := 0; i < 200000; i++ {
		c.Step()
		if i%5 == 0 {
			empByEdges[c.Edges()]++
			samples++
		}
	}
	for e, pExact := range exactByEdges {
		pEmp := empByEdges[e] / float64(samples)
		if math.Abs(pEmp-pExact) > 0.02 {
			t.Errorf("e=%d: empirical %v vs exact %v", e, pEmp, pExact)
		}
	}
}

// TestAblationDegreeGuard: without condition (1), holes can form from
// hole-free configurations — demonstrating the rule is load-bearing.
func TestAblationDegreeGuard(t *testing.T) {
	sawHole := false
	for trial := 0; trial < 30 && !sawHole; trial++ {
		c := MustNew(config.Spiral(20), 1, uint64(trial), WithoutDegreeGuard())
		for batch := 0; batch < 60 && !sawHole; batch++ {
			c.Run(200)
			if len(c.view().HoleCells()) > 0 {
				sawHole = true
			}
		}
	}
	if !sawHole {
		t.Error("ablating the degree guard never produced a hole; expected it to")
	}
}

// TestFig3FrozenTipMechanism reproduces the local mechanism behind Fig 3: a
// particle whose every adjacent empty location fails Property 1 — the pivot
// targets are "crowded" by cells of another arm of the configuration at
// lattice distance two — while a Property 2 leapfrog move exists. With
// Property 2 ablated, such a particle is frozen solid.
//
// (Reproduction note, recorded in EXPERIMENTS.md: exhaustive search shows no
// configuration with the GLOBAL Fig 3 property — zero Property-1 moves,
// some Property-2 moves — exists with ≤ 9 particles, and the P1-only move
// graph on Ω* is still connected for n ≤ 8; the paper's Fig 3 witness is a
// larger configuration. The local cage below isolates the phenomenon.)
func TestFig3FrozenTipMechanism(t *testing.T) {
	// Tip ℓ=(0,0) with line neighbor Q=(1,0). Cage cells at distance two:
	// (0,2) and (2,−2) kill the two pivot targets; (−2,1) provides a
	// Property-2 landing next to the far targets.
	c := config.New(
		lattice.Point{X: 0, Y: 0}, lattice.Point{X: 1, Y: 0}, lattice.Point{X: 2, Y: 0},
		lattice.Point{X: 0, Y: 2}, lattice.Point{X: 2, Y: -2}, lattice.Point{X: -2, Y: 1},
	)
	tip := lattice.Point{X: 0, Y: 0}
	anyP1, anyP2 := false, false
	for d := lattice.Dir(0); d < lattice.NumDirs; d++ {
		if c.Has(tip.Neighbor(d)) {
			continue
		}
		if move.Property1(c, tip, d) {
			anyP1 = true
		}
		if move.Property2(c, tip, d) {
			anyP2 = true
		}
	}
	if anyP1 {
		t.Error("caged tip should have no Property 1 moves")
	}
	if !anyP2 {
		t.Error("caged tip should retain a Property 2 move")
	}
	// Without the cage, the same tip has Property 1 pivots (the moves the
	// cage removed).
	open := config.New(
		lattice.Point{X: 0, Y: 0}, lattice.Point{X: 1, Y: 0}, lattice.Point{X: 2, Y: 0},
	)
	anyP1 = false
	for d := lattice.Dir(0); d < lattice.NumDirs; d++ {
		if open.Has(tip.Neighbor(d)) {
			continue
		}
		if move.Property1(open, tip, d) {
			anyP1 = true
		}
	}
	if !anyP1 {
		t.Error("uncaged line tip should have Property 1 pivot moves")
	}
}

// TestNoSmallFig3Witness documents that the global Fig 3 property requires a
// large configuration: for n ≤ 7 every hole-free configuration with any
// valid move has a valid Property-1 move.
func TestNoSmallFig3Witness(t *testing.T) {
	for n := 2; n <= 7; n++ {
		for _, c := range enumerate.AllHoleFree(n) {
			anyP1, anyP2 := false, false
			for _, l := range c.Points() {
				for d := lattice.Dir(0); d < lattice.NumDirs; d++ {
					lp := l.Neighbor(d)
					if c.Has(lp) || c.Degree(l) == 5 {
						continue
					}
					if move.Property1(c, l, d) {
						anyP1 = true
					} else if move.Property2(c, l, d) {
						anyP2 = true
					}
				}
			}
			if !anyP1 && anyP2 {
				t.Fatalf("n=%d: unexpected small Fig 3 witness %v", n, c.Points())
			}
			if !anyP1 && !anyP2 {
				t.Fatalf("n=%d: frozen-solid configuration %v contradicts ergodicity", n, c.Points())
			}
		}
	}
}
