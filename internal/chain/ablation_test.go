package chain

import (
	"testing"

	"sops/internal/config"
	"sops/internal/metrics"
)

// TestAblationProperty1Frozen: with Property 1 disabled, a straight line is
// completely frozen — interior particles are straight-through (every target
// has a nonempty common-neighbor set, so Property 2 never applies) and the
// tips' Property-2 leapfrog targets have no landing neighbor. Property 1 is
// what lets lines fold at all.
func TestAblationProperty1Frozen(t *testing.T) {
	c := MustNew(config.Line(10), 4, 5, WithoutProperty1())
	c.Run(50000)
	if c.Accepted() != 0 {
		t.Errorf("Property-2-only chain accepted %d moves from a line; expected frozen", c.Accepted())
	}
}

// TestAblationProperty2StillCompresses: disabling Property 2 leaves the
// everyday compression dynamics intact (its role is completeness of the
// state space, cf. Fig 3, not the compression drive).
func TestAblationProperty2StillCompresses(t *testing.T) {
	n := 25
	c := MustNew(config.Line(n), 6, 9, WithoutProperty2())
	c.Run(300000)
	if p := c.Perimeter(); p >= metrics.PMax(n)*2/3 {
		t.Errorf("perimeter %d: no compression without Property 2", p)
	}
	if !c.view().Connected() {
		t.Error("disconnected under Property-1-only dynamics")
	}
}

// TestRunUntilStopsEarly: the predicate-driven runner must stop at the
// first satisfied checkpoint, not run to the cap.
func TestRunUntilStopsEarly(t *testing.T) {
	c := MustNew(config.Line(20), 6, 3)
	target := 2 * metrics.PMin(20)
	done := c.RunUntil(50_000_000, 1000, func() bool {
		return c.Perimeter() <= target
	})
	if done == 50_000_000 && c.Perimeter() > target {
		t.Fatalf("never reached 2·pmin within cap")
	}
	if done%1000 != 0 {
		t.Errorf("done=%d not a multiple of the check interval", done)
	}
	if done > 10_000_000 {
		t.Errorf("took %d iterations for n=20; expected early stop", done)
	}
}

// TestRunUntilRespectsCap: with an unsatisfiable predicate the runner stops
// exactly at the cap.
func TestRunUntilRespectsCap(t *testing.T) {
	c := MustNew(config.Line(5), 4, 1)
	done := c.RunUntil(2500, 999, func() bool { return false })
	if done != 2500 {
		t.Errorf("done=%d, want exactly the 2500 cap", done)
	}
	if c.Steps() != 2500 {
		t.Errorf("steps=%d, want 2500", c.Steps())
	}
}

// TestConfigSnapshotIsolation: Config() must return an independent copy.
func TestConfigSnapshotIsolation(t *testing.T) {
	c := MustNew(config.Line(6), 4, 2)
	snap := c.Config()
	c.Run(10000)
	if snap.Edges() != 5 {
		t.Errorf("snapshot mutated: edges=%d, want 5", snap.Edges())
	}
}
