// Package chain implements the sequential Metropolis engine for local
// stochastic particle rules, canonically the compression Markov chain M of
// the paper (§3.1, Algorithm M): a Metropolis chain over connected particle
// configurations whose stationary distribution is π(σ) ∝ λ^{H(σ)} on the
// reachable state space — H(σ) = e(σ) for compression (Lemma 3.13),
// equivalently π(σ) ∝ λ^{−p(σ)} (Corollary 3.14). Each step selects a
// particle and a proposal slot uniformly at random — one of the six move
// directions, plus one slot per alternative payload state for rules with
// rotations — validates the proposal locally through the rule's compiled
// guard table, and applies the Metropolis filter λ^{ΔH}.
//
// The chain runs on the bit-packed grid engine: occupancy (and, for payload
// rules, per-particle state) lives in grid.Grid, and the per-step validity
// check is one 8-bit neighborhood-mask extraction plus lookups in the
// rule's 256-entry tables, with no heap allocation. The canonical
// rule.Compression(λ) reproduces the pre-rule hard-coded chain bit for bit:
// a (σ0, λ, seed) triple produces the same trajectory. The original
// map-backed implementation remains available via WithReferenceEngine as
// the differential-testing oracle for the compression rule.
package chain

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sops/internal/config"
	"sops/internal/frame"
	"sops/internal/grid"
	"sops/internal/lattice"
	"sops/internal/move"
	"sops/internal/rule"
)

// rngStream is the fixed second PCG seed word; New and Reset must use the
// same value so a Reset chain replays a fresh chain's randomness exactly.
const rngStream = 0x9e3779b97f4a7c15

// Option customizes a Chain; the variants are used by the ablation
// experiments in EXPERIMENTS.md to demonstrate that each rule of M is
// load-bearing.
type Option func(*Chain)

// WithoutDegreeGuard disables condition (1) of step 6 (e ≠ 5). Without it
// the chain can create holes; used only for ablation experiments.
func WithoutDegreeGuard() Option { return func(c *Chain) { c.degreeGuard = false } }

// WithoutProperty1 disables Property 1 moves; used only for ablations.
func WithoutProperty1() Option { return func(c *Chain) { c.prop1 = false } }

// WithoutProperty2 disables Property 2 moves. Without them the hole-free
// state space is not connected (Fig 3); used only for ablations.
func WithoutProperty2() Option { return func(c *Chain) { c.prop2 = false } }

// WithReferenceEngine runs the chain on the original map-backed
// config.Config with the BFS/ring-walk move checks instead of the bit-packed
// grid and rule tables. It exists for differential testing: both engines
// must produce identical trajectories from identical (σ0, λ, seed). It is
// compression-only (NewWithRule rejects it for other rules).
func WithReferenceEngine() Option { return func(c *Chain) { c.reference = true } }

// Chain is a running Metropolis instance of a local rule. It is not safe
// for concurrent use; run independent chains in separate goroutines instead.
type Chain struct {
	g      *grid.Grid     // fast engine (nil when reference is set)
	cfg    *config.Config // reference engine (nil unless reference is set)
	points []lattice.Point
	ru     *rule.Rule
	lambda float64
	// stateless and slots cache rule shape queries off the hot path.
	stateless bool
	slots     int
	// lamPow caches λ^k for k ∈ [−5, 5] at index k+5 for the reference
	// engine; the grid engine prices moves from the rule tables.
	lamPow [11]float64
	pcg    *rand.PCG // kept so Reset can reseed the stream in place
	rng    *rand.Rand

	// biased marks rules with a time-varying/site-dependent bias schedule;
	// lcache then memoizes the pricing ladders per effective λ. Both stay
	// zero for fixed-λ rules, whose hot path is untouched.
	biased bool
	lcache *rule.LadderCache

	reference    bool
	degreeGuard  bool
	prop1, prop2 bool

	edges     int // reference engine only; the grid tracks its own count
	hval      int // H(σ), maintained incrementally (grid engine)
	steps     uint64
	accepted  uint64
	rotations uint64
	holesGone bool // set once a hole-free configuration has been observed

	mlog *frame.MoveLog // accepted-move tap for delta frame encoding; may be nil
}

// SetMoveLog attaches a move log that records every accepted move and
// payload rotation (for delta frame encoding). Pass nil to detach.
func (c *Chain) SetMoveLog(l *frame.MoveLog) { c.mlog = l }

// New creates a compression chain (Markov chain M, possibly ablated via
// options) over a copy of the starting configuration σ0, which must be
// non-empty and connected, with bias parameter λ > 0. The chain is
// deterministic given (σ0, λ, seed).
func New(sigma0 *config.Config, lambda float64, seed uint64, opts ...Option) (*Chain, error) {
	if err := rule.ValidateLambda(lambda); err != nil {
		return nil, fmt.Errorf("chain: %w", err)
	}
	c := &Chain{
		lambda:      lambda,
		degreeGuard: true,
		prop1:       true,
		prop2:       true,
	}
	for _, o := range opts {
		o(c)
	}
	c.ru = rule.CompressionVariant(lambda, c.degreeGuard, c.prop1, c.prop2)
	if err := c.init(sigma0, seed); err != nil {
		return nil, err
	}
	return c, nil
}

// NewWithRule creates a chain running an arbitrary compiled rule over a
// copy of σ0. For rule.Compression(λ) it is equivalent to New(σ0, λ, seed):
// bit-identical trajectories. Payload rules draw the initial per-particle
// states uniformly from the chain's own randomness, so the full trajectory
// remains deterministic given (σ0, rule, seed).
func NewWithRule(sigma0 *config.Config, ru *rule.Rule, seed uint64, opts ...Option) (*Chain, error) {
	if ru == nil {
		return nil, fmt.Errorf("chain: nil rule")
	}
	c := &Chain{
		lambda:      ru.Lambda(),
		degreeGuard: true,
		prop1:       true,
		prop2:       true,
	}
	for _, o := range opts {
		o(c)
	}
	// The reference path re-derives its decisions from the unablated
	// Property 1/2 predicates and flags, so it can stand in only for the
	// canonical compression rule — an ablated variant (or any other rule)
	// would silently diverge from the grid engine.
	if c.reference && ru.Name() != rule.NameCompression {
		return nil, fmt.Errorf("chain: the reference engine supports only the canonical compression rule, not %q", ru.Name())
	}
	if !c.degreeGuard || !c.prop1 || !c.prop2 {
		return nil, fmt.Errorf("chain: ablation options apply to New, not NewWithRule (build an ablated rule instead)")
	}
	c.ru = ru
	if err := c.init(sigma0, seed); err != nil {
		return nil, err
	}
	return c, nil
}

// init finishes construction once the rule is fixed.
func (c *Chain) init(sigma0 *config.Config, seed uint64) error {
	if sigma0.N() == 0 {
		return fmt.Errorf("chain: empty starting configuration")
	}
	if !sigma0.Connected() {
		return fmt.Errorf("chain: starting configuration must be connected")
	}
	c.pcg = rand.NewPCG(seed, rngStream)
	c.rng = rand.New(c.pcg)
	c.stateless = c.ru.Stateless()
	c.slots = c.ru.Slots()
	c.biased = c.ru.Biased()
	c.lcache = nil
	if c.biased {
		if c.reference {
			return fmt.Errorf("chain: the reference engine supports only fixed-λ rules")
		}
		c.lcache = rule.NewLadderCache(c.ru)
	}
	c.points = sigma0.Points()
	if c.reference {
		c.cfg = sigma0.Clone()
		c.edges = sigma0.Edges()
	} else {
		c.g = grid.New(c.points, 0)
		if !c.stateless {
			c.g.EnablePayload()
			states := c.ru.States()
			for _, p := range c.points {
				c.g.SetPayload(p, uint8(c.rng.IntN(states)))
			}
		}
		c.hval = c.ru.Energy(c.g)
	}
	for k := -5; k <= 5; k++ {
		c.lamPow[k+5] = math.Pow(c.lambda, float64(k))
	}
	c.holesGone = !sigma0.HasHoles()
	return nil
}

// Reset re-initializes the chain in place to run rule ru from the starting
// configuration pts with a fresh seed, producing a trajectory bit-identical
// to NewWithRule on the same (configuration, rule, seed) while reusing the
// chain's grid window and point buffer. It is the arena fast path for sweep
// runners that execute many independent tasks on one worker.
//
// pts must be non-empty, duplicate-free, connected, and in canonical (Y, X)
// order (as produced by config.Config.Points or grid.Grid.AppendPoints);
// connectivity is the caller's responsibility and is not re-verified. The
// reference engine does not support Reset.
func (c *Chain) Reset(pts []lattice.Point, ru *rule.Rule, seed uint64) error {
	if c.reference {
		return fmt.Errorf("chain: Reset is not supported on the reference engine")
	}
	if ru == nil {
		return fmt.Errorf("chain: nil rule")
	}
	if len(pts) == 0 {
		return fmt.Errorf("chain: empty starting configuration")
	}
	c.ru = ru
	c.lambda = ru.Lambda()
	c.pcg.Seed(seed, rngStream)
	c.stateless = ru.Stateless()
	c.slots = ru.Slots()
	c.biased = ru.Biased()
	c.lcache = nil
	if c.biased {
		c.lcache = rule.NewLadderCache(ru)
	}
	c.points = append(c.points[:0], pts...)
	c.g.Reset(c.points)
	if !c.stateless {
		c.g.EnablePayload()
		states := c.ru.States()
		for _, p := range c.points {
			c.g.SetPayload(p, uint8(c.rng.IntN(states)))
		}
	}
	c.hval = c.ru.Energy(c.g)
	for k := -5; k <= 5; k++ {
		c.lamPow[k+5] = math.Pow(c.lambda, float64(k))
	}
	c.steps, c.accepted, c.rotations = 0, 0, 0
	c.holesGone = !c.g.HasHoles()
	return nil
}

// Grid exposes the chain's live occupancy grid for read-only observation
// (nil on the reference engine); mutating it corrupts the chain.
func (c *Chain) Grid() *grid.Grid { return c.g }

// MustNew is New but panics on error; convenient for examples and tests with
// known-good inputs.
func MustNew(sigma0 *config.Config, lambda float64, seed uint64, opts ...Option) *Chain {
	c, err := New(sigma0, lambda, seed, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// MustNewWithRule is NewWithRule but panics on error.
func MustNewWithRule(sigma0 *config.Config, ru *rule.Rule, seed uint64, opts ...Option) *Chain {
	c, err := NewWithRule(sigma0, ru, seed, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Rule returns the rule the chain runs.
func (c *Chain) Rule() *rule.Rule { return c.ru }

// Lambda returns the bias parameter.
func (c *Chain) Lambda() float64 { return c.lambda }

// N returns the number of particles.
func (c *Chain) N() int { return len(c.points) }

// Steps returns the number of iterations executed (accepted or not).
func (c *Chain) Steps() uint64 { return c.steps }

// Accepted returns the number of iterations that moved a particle.
func (c *Chain) Accepted() uint64 { return c.accepted }

// Rotations returns the number of accepted payload changes (zero for
// stateless rules).
func (c *Chain) Rotations() uint64 { return c.rotations }

// Edges returns e(σ) for the current configuration, maintained incrementally.
func (c *Chain) Edges() int {
	if c.reference {
		return c.edges
	}
	return c.g.Edges()
}

// Energy returns H(σ), the rule's Hamiltonian for the current state,
// maintained incrementally: e(σ) for compression, the aligned-edge count for
// alignment.
func (c *Chain) Energy() int {
	if c.reference {
		return c.edges
	}
	return c.hval
}

// Payload returns the payload state of particle i (0 for stateless rules).
func (c *Chain) Payload(i int) uint8 {
	if c.reference {
		return 0
	}
	return c.g.Payload(c.points[i])
}

// hasHolesNow recomputes hole presence for the current configuration.
func (c *Chain) hasHolesNow() bool {
	if c.reference {
		return c.cfg.HasHoles()
	}
	return c.g.HasHoles()
}

// Perimeter returns p(σ) for the current configuration. Once the chain has
// reached the hole-free space Ω* it uses the identity p = 3n − 3 − e of
// Lemma 2.3 (holes never reform, Lemma 3.2); before that it walks the
// boundary — a single walk, on the grid engine, answering both the hole
// check and the perimeter.
func (c *Chain) Perimeter() int {
	if len(c.points) == 1 {
		return 0
	}
	if c.holesGone {
		return 3*len(c.points) - 3 - c.Edges()
	}
	if c.reference {
		if !c.cfg.HasHoles() {
			c.holesGone = true
			return 3*len(c.points) - 3 - c.Edges()
		}
		return c.cfg.Perimeter()
	}
	cycles, edges := c.g.Boundaries()
	if cycles <= 1 {
		c.holesGone = true
		return 3*len(c.points) - 3 - c.Edges()
	}
	return edges
}

// HoleFree reports whether the chain has reached the hole-free space Ω*.
func (c *Chain) HoleFree() bool {
	if !c.holesGone && !c.hasHolesNow() {
		c.holesGone = true
	}
	return c.holesGone
}

// Config returns a snapshot copy of the current configuration.
func (c *Chain) Config() *config.Config {
	if c.reference {
		return c.cfg.Clone()
	}
	return config.FromGrid(c.g)
}

// view returns a map-backed configuration of the current state for read-only
// use in tests and invariant checks. In reference mode it is the live
// internal configuration; on the grid engine it is materialized per call.
func (c *Chain) view() *config.Config {
	if c.reference {
		return c.cfg
	}
	return config.FromGrid(c.g)
}

// Step executes one iteration of the Metropolis chain and reports whether
// the state changed (a particle moved or a payload rotated).
func (c *Chain) Step() bool {
	c.steps++
	i := c.rng.IntN(len(c.points))
	l := c.points[i]
	slot := c.rng.IntN(c.slots)
	if c.reference {
		return c.stepReference(i, l, lattice.Dir(slot))
	}
	if slot >= lattice.NumDirs {
		return c.stepRotate(l, slot-lattice.NumDirs)
	}
	d := lattice.Dir(slot)
	lp := l.Neighbor(d)
	if c.g.Has(lp) {
		return false
	}
	// One mask extraction answers the guard and the Hamiltonian tables.
	m := c.g.PairMask(l, d)
	if !c.ru.Allowed(m) {
		return false
	}
	var acc float64
	var delta int
	if c.stateless {
		acc = c.ru.Accept(m)
		delta = c.ru.MoveDelta(m, 0)
		if c.biased {
			// The proposal is priced at the mover's current site ℓ during
			// the epoch of this iteration (0-indexed: steps−1).
			acc = c.lcache.At(c.steps-1, l).Accept(m)
		}
	} else {
		same := c.g.PairSame(l, d, m, c.g.Payload(l))
		acc = c.ru.AcceptPay(m, same)
		delta = c.ru.MoveDelta(m, same)
		if c.biased {
			acc = c.lcache.At(c.steps-1, l).AcceptPay(m, same)
		}
	}
	// The Metropolis filter: accept with probability min(1, λ^ΔH).
	if acc < 1 {
		if c.rng.Float64() >= acc {
			return false
		}
	}
	c.g.Move(l, lp)
	c.points[i] = lp
	c.hval += delta
	c.accepted++
	if c.mlog != nil {
		c.mlog.Moved(l, lp, c.g.Payload(lp))
	}
	return true
}

// stepRotate proposes the j-th alternative payload state for the particle
// at l and accepts with the Metropolis ratio on the rotation's ΔH.
func (c *Chain) stepRotate(l lattice.Point, j int) bool {
	s := c.g.Payload(l)
	t := c.ru.RotTarget(s, j)
	delta := c.ru.RotDelta(c.g.SameNeighborMask(l, s), c.g.SameNeighborMask(l, t))
	acc := c.ru.RotAccept(delta)
	if c.biased {
		acc = c.lcache.At(c.steps-1, l).RotAccept(delta)
	}
	if acc < 1 {
		if c.rng.Float64() >= acc {
			return false
		}
	}
	c.g.SetPayload(l, t)
	c.hval += delta
	c.rotations++
	if c.mlog != nil {
		c.mlog.Rotated(l, t)
	}
	return true
}

// stepReference is the pre-refactor step body on the map-backed engine. It
// must consume randomness exactly as the grid path does.
func (c *Chain) stepReference(i int, l lattice.Point, d lattice.Dir) bool {
	lp := l.Neighbor(d)
	if c.cfg.Has(lp) {
		return false
	}
	e := c.cfg.Degree(l)
	if c.degreeGuard && e == 5 {
		return false
	}
	ok := (c.prop1 && move.Property1(c.cfg, l, d)) || (c.prop2 && move.Property2(c.cfg, l, d))
	if !ok {
		return false
	}
	ep := c.cfg.DegreeExcluding(lp, l)
	if thresh := c.lamPow[ep-e+5]; thresh < 1 {
		if c.rng.Float64() >= thresh {
			return false
		}
	}
	c.cfg.Move(l, lp)
	c.points[i] = lp
	c.edges += ep - e
	c.accepted++
	if c.mlog != nil {
		c.mlog.Moved(l, lp, 0)
	}
	return true
}

// Run executes n iterations and returns the number of accepted moves.
func (c *Chain) Run(n uint64) uint64 {
	var acc uint64
	for k := uint64(0); k < n; k++ {
		if c.Step() {
			acc++
		}
	}
	return acc
}

// RunUntil executes up to max iterations, invoking check every interval
// iterations; it stops early when check returns true. It returns the number
// of iterations executed. The callback closes over whatever state it needs
// (typically the chain itself); the signature is engine-neutral so the
// Metropolis and kMC engines satisfy one interface.
func (c *Chain) RunUntil(max, interval uint64, check func() bool) uint64 {
	if interval == 0 {
		interval = 1
	}
	var done uint64
	for done < max {
		batch := interval
		if done+batch > max {
			batch = max - done
		}
		c.Run(batch)
		done += batch
		if check() {
			return done
		}
	}
	return done
}
