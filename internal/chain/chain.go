// Package chain implements the compression Markov chain M of the paper
// (§3.1, Algorithm M): a Metropolis chain over connected particle
// configurations whose stationary distribution is π(σ) ∝ λ^e(σ) on the
// hole-free state space Ω* (Lemma 3.13), equivalently π(σ) ∝ λ^{−p(σ)}
// (Corollary 3.14). Each step selects a particle and a direction uniformly at
// random, validates the move locally (degree ≠ 5 and Property 1 or 2), and
// applies the Metropolis filter with bias λ.
//
// The chain runs on the bit-packed grid engine: occupancy lives in
// grid.Grid, and the per-step validity check is one 8-bit neighborhood-mask
// extraction plus one lookup in the move.Classify table, with no heap
// allocation. The original map-backed implementation remains available via
// WithReferenceEngine as the differential-testing oracle; both engines
// consume randomness identically, so a (σ0, λ, seed) triple produces the
// same trajectory on either.
package chain

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sops/internal/config"
	"sops/internal/grid"
	"sops/internal/lattice"
	"sops/internal/move"
)

// Option customizes a Chain; the variants are used by the ablation
// experiments in EXPERIMENTS.md to demonstrate that each rule of M is
// load-bearing.
type Option func(*Chain)

// WithoutDegreeGuard disables condition (1) of step 6 (e ≠ 5). Without it
// the chain can create holes; used only for ablation experiments.
func WithoutDegreeGuard() Option { return func(c *Chain) { c.degreeGuard = false } }

// WithoutProperty1 disables Property 1 moves; used only for ablations.
func WithoutProperty1() Option { return func(c *Chain) { c.prop1 = false } }

// WithoutProperty2 disables Property 2 moves. Without them the hole-free
// state space is not connected (Fig 3); used only for ablations.
func WithoutProperty2() Option { return func(c *Chain) { c.prop2 = false } }

// WithReferenceEngine runs the chain on the original map-backed
// config.Config with the BFS/ring-walk move checks instead of the bit-packed
// grid and mask tables. It exists for differential testing: both engines
// must produce identical trajectories from identical (σ0, λ, seed).
func WithReferenceEngine() Option { return func(c *Chain) { c.reference = true } }

// Chain is a running instance of Markov chain M. It is not safe for
// concurrent use; run independent chains in separate goroutines instead.
type Chain struct {
	g      *grid.Grid     // fast engine (nil when reference is set)
	cfg    *config.Config // reference engine (nil unless reference is set)
	points []lattice.Point
	lambda float64
	// lamPow caches λ^k for k ∈ [−5, 5] at index k+5: the only exponents a
	// single move can produce, since degrees lie in [0, 5].
	lamPow [11]float64
	rng    *rand.Rand

	reference    bool
	degreeGuard  bool
	prop1, prop2 bool

	edges     int // reference engine only; the grid tracks its own count
	steps     uint64
	accepted  uint64
	holesGone bool // set once a hole-free configuration has been observed
}

// New creates a chain over a copy of the starting configuration σ0, which
// must be non-empty and connected, with bias parameter λ > 0. The chain is
// deterministic given (σ0, λ, seed).
func New(sigma0 *config.Config, lambda float64, seed uint64, opts ...Option) (*Chain, error) {
	if sigma0.N() == 0 {
		return nil, fmt.Errorf("chain: empty starting configuration")
	}
	if !sigma0.Connected() {
		return nil, fmt.Errorf("chain: starting configuration must be connected")
	}
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return nil, fmt.Errorf("chain: bias λ must be a positive finite number, got %v", lambda)
	}
	c := &Chain{
		lambda:      lambda,
		rng:         rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15)),
		degreeGuard: true,
		prop1:       true,
		prop2:       true,
	}
	for _, o := range opts {
		o(c)
	}
	c.points = sigma0.Points()
	if c.reference {
		c.cfg = sigma0.Clone()
		c.edges = sigma0.Edges()
	} else {
		c.g = grid.New(c.points, 0)
	}
	for k := -5; k <= 5; k++ {
		c.lamPow[k+5] = math.Pow(lambda, float64(k))
	}
	c.holesGone = !sigma0.HasHoles()
	return c, nil
}

// MustNew is New but panics on error; convenient for examples and tests with
// known-good inputs.
func MustNew(sigma0 *config.Config, lambda float64, seed uint64, opts ...Option) *Chain {
	c, err := New(sigma0, lambda, seed, opts...)
	if err != nil {
		panic(err)
	}
	return c
}

// Lambda returns the bias parameter.
func (c *Chain) Lambda() float64 { return c.lambda }

// N returns the number of particles.
func (c *Chain) N() int { return len(c.points) }

// Steps returns the number of iterations executed (accepted or not).
func (c *Chain) Steps() uint64 { return c.steps }

// Accepted returns the number of iterations that moved a particle.
func (c *Chain) Accepted() uint64 { return c.accepted }

// Edges returns e(σ) for the current configuration, maintained incrementally.
func (c *Chain) Edges() int {
	if c.reference {
		return c.edges
	}
	return c.g.Edges()
}

// hasHolesNow recomputes hole presence for the current configuration.
func (c *Chain) hasHolesNow() bool {
	if c.reference {
		return c.cfg.HasHoles()
	}
	return c.g.HasHoles()
}

// Perimeter returns p(σ) for the current configuration. Once the chain has
// reached the hole-free space Ω* it uses the identity p = 3n − 3 − e of
// Lemma 2.3 (holes never reform, Lemma 3.2); before that it walks the
// boundary — a single walk, on the grid engine, answering both the hole
// check and the perimeter.
func (c *Chain) Perimeter() int {
	if len(c.points) == 1 {
		return 0
	}
	if c.holesGone {
		return 3*len(c.points) - 3 - c.Edges()
	}
	if c.reference {
		if !c.cfg.HasHoles() {
			c.holesGone = true
			return 3*len(c.points) - 3 - c.Edges()
		}
		return c.cfg.Perimeter()
	}
	cycles, edges := c.g.Boundaries()
	if cycles <= 1 {
		c.holesGone = true
		return 3*len(c.points) - 3 - c.Edges()
	}
	return edges
}

// HoleFree reports whether the chain has reached the hole-free space Ω*.
func (c *Chain) HoleFree() bool {
	if !c.holesGone && !c.hasHolesNow() {
		c.holesGone = true
	}
	return c.holesGone
}

// Config returns a snapshot copy of the current configuration.
func (c *Chain) Config() *config.Config {
	if c.reference {
		return c.cfg.Clone()
	}
	return config.FromGrid(c.g)
}

// view returns a map-backed configuration of the current state for read-only
// use in tests and invariant checks. In reference mode it is the live
// internal configuration; on the grid engine it is materialized per call.
func (c *Chain) view() *config.Config {
	if c.reference {
		return c.cfg
	}
	return config.FromGrid(c.g)
}

// Step executes one iteration of Markov chain M and reports whether a
// particle moved.
func (c *Chain) Step() bool {
	c.steps++
	i := c.rng.IntN(len(c.points))
	l := c.points[i]
	d := lattice.Dir(c.rng.IntN(lattice.NumDirs))
	if c.reference {
		return c.stepReference(i, l, d)
	}
	lp := l.Neighbor(d)
	if c.g.Has(lp) {
		return false
	}
	// One mask extraction answers conditions (1) and (2) and both degrees.
	cl := move.Classify(c.g.PairMask(l, d))
	// Condition (1): the particle must have fewer than five neighbors, or a
	// hole could form at ℓ.
	e := cl.Degree()
	if c.degreeGuard && e == 5 {
		return false
	}
	// Condition (2): Property 1 or Property 2 must hold for (ℓ, ℓ′).
	if !((c.prop1 && cl.Property1()) || (c.prop2 && cl.Property2())) {
		return false
	}
	// Condition (3), the Metropolis filter: accept with probability
	// min(1, λ^{e′−e}).
	ep := cl.TargetDegree()
	if thresh := c.lamPow[ep-e+5]; thresh < 1 {
		if c.rng.Float64() >= thresh {
			return false
		}
	}
	c.g.Move(l, lp)
	c.points[i] = lp
	c.accepted++
	return true
}

// stepReference is the pre-refactor step body on the map-backed engine. It
// must consume randomness exactly as the grid path does.
func (c *Chain) stepReference(i int, l lattice.Point, d lattice.Dir) bool {
	lp := l.Neighbor(d)
	if c.cfg.Has(lp) {
		return false
	}
	e := c.cfg.Degree(l)
	if c.degreeGuard && e == 5 {
		return false
	}
	ok := (c.prop1 && move.Property1(c.cfg, l, d)) || (c.prop2 && move.Property2(c.cfg, l, d))
	if !ok {
		return false
	}
	ep := c.cfg.DegreeExcluding(lp, l)
	if thresh := c.lamPow[ep-e+5]; thresh < 1 {
		if c.rng.Float64() >= thresh {
			return false
		}
	}
	c.cfg.Move(l, lp)
	c.points[i] = lp
	c.edges += ep - e
	c.accepted++
	return true
}

// Run executes n iterations and returns the number of accepted moves.
func (c *Chain) Run(n uint64) uint64 {
	var acc uint64
	for k := uint64(0); k < n; k++ {
		if c.Step() {
			acc++
		}
	}
	return acc
}

// RunUntil executes up to max iterations, invoking check every interval
// iterations; it stops early when check returns true. It returns the number
// of iterations executed. The callback closes over whatever state it needs
// (typically the chain itself); the signature is engine-neutral so the
// Metropolis and kMC engines satisfy one interface.
func (c *Chain) RunUntil(max, interval uint64, check func() bool) uint64 {
	if interval == 0 {
		interval = 1
	}
	var done uint64
	for done < max {
		batch := interval
		if done+batch > max {
			batch = max - done
		}
		c.Run(batch)
		done += batch
		if check() {
			return done
		}
	}
	return done
}
