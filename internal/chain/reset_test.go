package chain

import (
	"testing"

	"sops/internal/config"
	"sops/internal/rule"
)

// TestResetMatchesFresh drives one Metropolis chain through a schedule of
// Reset calls with varying rules, sizes, and seeds, and asserts every leg's
// trajectory is bit-identical to a freshly constructed chain.
func TestResetMatchesFresh(t *testing.T) {
	align, err := rule.Alignment(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The forage legs cross the λ switch at 20k of the 50k test steps, so a
	// Reset into (and out of) a biased rule must rebuild the λ-epoch state
	// along with the rule tables.
	forage, err := rule.Forage(5, rule.ForageOptions{
		LambdaLow: 0.8,
		Radius:    4,
		FoodSteps: 20_000,
		Epoch:     512,
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ru   *rule.Rule
		cfg  *config.Config
		seed uint64
	}{
		{"compression-spiral", rule.Compression(4), config.Spiral(60), 7},
		{"alignment-line", align, config.Line(25), 11},
		{"forage-spiral", forage, config.Spiral(50), 19},
		{"compression-line", rule.Compression(2), config.Line(90), 13},
		{"alignment-spiral", align, config.Spiral(40), 17},
		{"forage-line", forage, config.Line(35), 23},
	}
	reused, err := NewWithRule(cases[0].cfg, cases[0].ru, 1)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 50_000
	for _, tc := range cases {
		if err := reused.Reset(tc.cfg.Points(), tc.ru, tc.seed); err != nil {
			t.Fatalf("%s: Reset: %v", tc.name, err)
		}
		fresh, err := NewWithRule(tc.cfg, tc.ru, tc.seed)
		if err != nil {
			t.Fatalf("%s: NewWithRule: %v", tc.name, err)
		}
		reused.Run(steps)
		fresh.Run(steps)
		if reused.Steps() != fresh.Steps() || reused.Accepted() != fresh.Accepted() ||
			reused.Rotations() != fresh.Rotations() {
			t.Fatalf("%s: counters (%d, %d, %d), want (%d, %d, %d)", tc.name,
				reused.Steps(), reused.Accepted(), reused.Rotations(),
				fresh.Steps(), fresh.Accepted(), fresh.Rotations())
		}
		if reused.Energy() != fresh.Energy() || reused.Edges() != fresh.Edges() ||
			reused.Perimeter() != fresh.Perimeter() {
			t.Fatalf("%s: observables (%d, %d, %d), want (%d, %d, %d)", tc.name,
				reused.Energy(), reused.Edges(), reused.Perimeter(),
				fresh.Energy(), fresh.Edges(), fresh.Perimeter())
		}
		for i := range reused.points {
			if reused.points[i] != fresh.points[i] {
				t.Fatalf("%s: particle %d at %v, want %v", tc.name, i, reused.points[i], fresh.points[i])
			}
			if reused.Payload(i) != fresh.Payload(i) {
				t.Fatalf("%s: particle %d payload %d, want %d", tc.name, i, reused.Payload(i), fresh.Payload(i))
			}
		}
	}
}

// TestResetUnsupportedOnReference pins the reference-engine restriction.
func TestResetUnsupportedOnReference(t *testing.T) {
	c := MustNew(config.Spiral(10), 4, 1, WithReferenceEngine())
	if err := c.Reset(config.Spiral(10).Points(), rule.Compression(4), 1); err == nil {
		t.Fatal("Reset on the reference engine should fail")
	}
}
