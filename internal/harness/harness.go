// Package harness orchestrates experiment sweeps: it fans replicated,
// seeded runs out over a worker pool and aggregates their metrics. The
// phase-diagram and scaling tools and several benchmarks are thin wrappers
// around it.
package harness

import (
	"fmt"
	"sort"
	"sync"

	"sops/internal/stats"
)

// Task is one unit of work: a named sweep point with a replication index.
// Run must be deterministic given the task (derive randomness from Seed).
type Task struct {
	// Point identifies the sweep coordinate (e.g. a λ value or a size n).
	Point float64
	// Rep is the replication index at this point.
	Rep int
	// Seed is the derived seed for this run.
	Seed uint64
}

// Metrics is a bag of named measurements produced by one run.
type Metrics map[string]float64

// PointSummary aggregates all replications at one sweep point.
type PointSummary struct {
	Point float64
	// ByMetric holds a summary per metric name.
	ByMetric map[string]stats.Summary
	// Failures counts runs that returned an error.
	Failures int
}

// Sweep runs fn for every (point, rep) pair on `workers` goroutines and
// aggregates per-point summaries, sorted by point. Seeds are derived
// deterministically from baseSeed, the point index, and the rep, so a sweep
// is reproducible end to end. Errors from fn are counted per point, not
// fatal.
func Sweep(points []float64, reps, workers int, baseSeed uint64, fn func(Task) (Metrics, error)) []PointSummary {
	if reps < 1 {
		reps = 1
	}
	if workers < 1 {
		workers = 1
	}
	type job struct {
		task     Task
		pointIdx int
	}
	type result struct {
		pointIdx int
		metrics  Metrics
		err      error
	}
	jobs := make(chan job, workers)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				m, err := fn(j.task)
				results <- result{pointIdx: j.pointIdx, metrics: m, err: err}
			}
		}()
	}
	go func() {
		for i, p := range points {
			for r := 0; r < reps; r++ {
				jobs <- job{
					pointIdx: i,
					task: Task{
						Point: p,
						Rep:   r,
						Seed:  baseSeed ^ (uint64(i+1) * 0x9e3779b97f4a7c15) ^ (uint64(r+1) * 0xbf58476d1ce4e5b9),
					},
				}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	samples := make([]map[string][]float64, len(points))
	failures := make([]int, len(points))
	for i := range samples {
		samples[i] = map[string][]float64{}
	}
	for r := range results {
		if r.err != nil {
			failures[r.pointIdx]++
			continue
		}
		for name, v := range r.metrics {
			samples[r.pointIdx][name] = append(samples[r.pointIdx][name], v)
		}
	}

	out := make([]PointSummary, len(points))
	for i, p := range points {
		ps := PointSummary{Point: p, ByMetric: map[string]stats.Summary{}, Failures: failures[i]}
		for name, xs := range samples[i] {
			ps.ByMetric[name] = stats.Summarize(xs)
		}
		out[i] = ps
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// Mean returns the mean of the named metric at this point, or an error if
// the metric was never reported.
func (p PointSummary) Mean(name string) (float64, error) {
	s, ok := p.ByMetric[name]
	if !ok {
		return 0, fmt.Errorf("harness: metric %q not recorded at point %v", name, p.Point)
	}
	return s.Mean, nil
}
