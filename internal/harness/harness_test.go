package harness

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSweepAggregation(t *testing.T) {
	points := []float64{3, 1, 2}
	var calls atomic.Int64
	out := Sweep(points, 4, 3, 99, func(task Task) (Metrics, error) {
		calls.Add(1)
		return Metrics{
			"double": 2 * task.Point,
			"rep":    float64(task.Rep),
		}, nil
	})
	if calls.Load() != 12 {
		t.Fatalf("fn called %d times, want 12", calls.Load())
	}
	if len(out) != 3 {
		t.Fatalf("got %d summaries", len(out))
	}
	// Sorted by point.
	for i, want := range []float64{1, 2, 3} {
		if out[i].Point != want {
			t.Fatalf("summary %d point %v, want %v", i, out[i].Point, want)
		}
		mean, err := out[i].Mean("double")
		if err != nil || mean != 2*want {
			t.Errorf("point %v mean double = %v (%v)", want, mean, err)
		}
		s := out[i].ByMetric["rep"]
		if s.N != 4 || s.Min != 0 || s.Max != 3 {
			t.Errorf("point %v rep summary %+v", want, s)
		}
		if out[i].Failures != 0 {
			t.Errorf("unexpected failures at %v", want)
		}
	}
	if _, err := out[0].Mean("missing"); err == nil {
		t.Error("missing metric should error")
	}
}

func TestSweepSeedsDeterministicAndDistinct(t *testing.T) {
	collect := func() map[string]uint64 {
		seeds := map[string]uint64{}
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		Sweep([]float64{1, 2}, 3, 4, 7, func(task Task) (Metrics, error) {
			<-mu
			seeds[fmt.Sprintf("%v/%d", task.Point, task.Rep)] = task.Seed
			mu <- struct{}{}
			return Metrics{"x": 1}, nil
		})
		return seeds
	}
	a, b := collect(), collect()
	if len(a) != 6 {
		t.Fatalf("expected 6 distinct tasks, got %d", len(a))
	}
	seen := map[uint64]bool{}
	for k, s := range a {
		if b[k] != s {
			t.Errorf("seed for %s not deterministic: %d vs %d", k, s, b[k])
		}
		if seen[s] {
			t.Errorf("duplicate seed %d", s)
		}
		seen[s] = true
	}
}

func TestSweepCountsFailures(t *testing.T) {
	out := Sweep([]float64{5}, 4, 2, 1, func(task Task) (Metrics, error) {
		if task.Rep%2 == 0 {
			return nil, fmt.Errorf("boom")
		}
		return Metrics{"ok": 1}, nil
	})
	if out[0].Failures != 2 {
		t.Errorf("failures = %d, want 2", out[0].Failures)
	}
	if s := out[0].ByMetric["ok"]; s.N != 2 {
		t.Errorf("ok samples = %d, want 2", s.N)
	}
}

func TestSweepDegenerateArgs(t *testing.T) {
	out := Sweep([]float64{1}, 0, 0, 0, func(task Task) (Metrics, error) {
		return Metrics{"v": 9}, nil
	})
	if len(out) != 1 || out[0].ByMetric["v"].N != 1 {
		t.Errorf("degenerate sweep wrong: %+v", out)
	}
}
